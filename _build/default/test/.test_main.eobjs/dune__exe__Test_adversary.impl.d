test/test_adversary.ml: Action_id Alcotest Core Fault_plan Helpers Init_plan List Pid Sim
