test/test_protocols.ml: Action_id Alcotest Core Detector Fault_plan Helpers Init_plan List Pid Result Sim
