test/test_enumerate.ml: Action_id Alcotest Array Core Detector Enumerate Event Fact Format Hashtbl History Init_plan List Message Option Pid Printf Result Run String Trace
