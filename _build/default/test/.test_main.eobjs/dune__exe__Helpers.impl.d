test/helpers.ml: Alcotest Fault_plan Init_plan Int64 List Option Oracle Run Sim
