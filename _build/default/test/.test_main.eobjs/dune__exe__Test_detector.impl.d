test/test_detector.ml: Alcotest Core Detector Fault_plan Helpers List Oracle Pid Report Result Sim
