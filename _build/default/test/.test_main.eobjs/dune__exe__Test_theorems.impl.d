test/test_theorems.ml: Action_id Alcotest Core Detector Enumerate Epistemic Helpers Init_plan Lazy List Pid Printf Result Run
