test/test_dist.ml: Action_id Alcotest Array Channel Core Detector Event Fact Fault_plan Gen History Init_plan List Message Outbox Pid Prng QCheck QCheck_alcotest Result Run Sim
