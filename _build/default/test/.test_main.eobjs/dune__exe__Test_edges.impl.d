test/test_edges.ml: Action_id Alcotest Core Fault_plan Init_plan List Option Pid Printf Prng Protocol QCheck QCheck_alcotest Run Sim
