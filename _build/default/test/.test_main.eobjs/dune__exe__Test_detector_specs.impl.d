test/test_detector_specs.ml: Alcotest Array Core Detector Event Fault_plan History Init_plan Int64 List Option Pid Printf Report Run Sim Stats
