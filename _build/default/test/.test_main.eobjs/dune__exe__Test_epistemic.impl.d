test/test_epistemic.ml: Action_id Alcotest Checker Core Enumerate Epistemic Fact Formula Init_plan Lazy List Message Pid Printf Run System
