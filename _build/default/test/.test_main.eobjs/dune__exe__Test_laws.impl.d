test/test_laws.ml: Action_id Core Detector Epistemic Event Fact Fault_plan Format Gen Init_plan Int64 List Message Pid Prng QCheck QCheck_alcotest Report Sim Stdlib Test
