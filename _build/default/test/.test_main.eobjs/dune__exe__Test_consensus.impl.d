test/test_consensus.ml: Alcotest Array Consensus Core Detector Fault_plan Helpers List Oracle Result Sim
