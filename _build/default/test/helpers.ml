(* Shared test utilities. *)

let check_ok what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let check_err what = function
  | Ok () -> Alcotest.failf "%s: expected a violation, got none" what
  | Error _ -> ()

(* A standard UDC workload: every process initiates one action, staggered. *)
let workload n = Init_plan.staggered ~n ~actions_per_process:1 ~spacing:3

let run_udc ?(loss = 0.0) ?(oracle = Oracle.none) ?(faults = Fault_plan.empty)
    ?(max_ticks = 3000) ?init_plan ~n ~seed proto =
  let cfg = Sim.config ~n ~seed in
  let cfg =
    {
      cfg with
      Sim.loss_rate = loss;
      oracle;
      fault_plan = faults;
      init_plan = Option.value ~default:(workload n) init_plan;
      max_ticks;
    }
  in
  Sim.execute_uniform cfg proto

(* Check a run respects the model conditions, then a property. *)
let well_formed ?(k = 8) run =
  check_ok "well-formed" (Run.check_well_formed run ~max_consecutive_drops:k)

let seeds count = List.init count (fun i -> Int64.of_int ((i * 7919) + 13))
