(* The knowledge-theoretic results: Propositions 3.4/3.5 and Theorems
   3.6/4.3, checked exactly on exhaustively enumerated (timed) systems. *)

open Helpers

let alpha0 = Action_id.make ~owner:0 ~tag:0

let enumerate ?(n = 3) ?(depth = 7) ?(crashes = 2) ?(mode = Enumerate.Perfect_reports)
    proto =
  let cfg = Enumerate.config ~n ~depth in
  let cfg =
    {
      cfg with
      Enumerate.max_crashes = crashes;
      init_plan = Init_plan.one ~owner:0 ~at:1;
      oracle_mode = mode;
      max_nodes = 20_000_000;
    }
  in
  let out = Enumerate.runs cfg proto in
  Alcotest.(check bool) "exhaustive" true out.Enumerate.exhaustive;
  out.Enumerate.runs

(* The canonical Theorem 3.6 setting: the Prop 3.1 protocol under a
   full-information wrapper, perfect report points, up to 2 crashes. *)
let udc_env =
  lazy
    (let runs =
       enumerate (Core.Fip.make ~trust_reports:true (module Core.Ack_udc.P))
     in
     Epistemic.Checker.make (Epistemic.System.of_runs runs))

(* Proposition 3.4: under A1 + A5_{n-1}, weak accuracy iff strong accuracy.
   Two data points: the perfect-report system satisfies both; a system
   whose detector may falsely suspect p1 (weakly-but-not-strongly accurate
   per-run) violates both — because the full failure freedom contains the
   run in which everyone but p1 crashes and p1 was suspected anyway. *)
let prop_3_4 () =
  let every_run f runs = List.for_all (fun r -> Result.is_ok (f r)) runs in
  let perfect_runs =
    enumerate ~depth:6 (Core.Fip.make ~trust_reports:true (module Core.Ack_udc.P))
  in
  Alcotest.(check bool) "perfect: strong accuracy" true
    (every_run Detector.Spec.strong_accuracy perfect_runs);
  Alcotest.(check bool) "perfect: weak accuracy" true
    (every_run Detector.Spec.weak_accuracy perfect_runs);
  let lying_runs =
    enumerate ~depth:6 ~mode:(Enumerate.Lying_reports 1)
      (Core.Fip.make ~trust_reports:false (module Core.Ack_udc.P))
  in
  Alcotest.(check bool) "lying: strong accuracy fails" false
    (every_run Detector.Spec.strong_accuracy lying_runs);
  Alcotest.(check bool) "lying: weak accuracy fails too" false
    (every_run Detector.Spec.weak_accuracy lying_runs);
  (* the witness the proof constructs: a run where p1 is the only correct
     process yet was suspected *)
  let witness =
    List.exists
      (fun r ->
        Pid.Set.equal (Run.faulty r) (Pid.Set.of_list [ 0; 2 ])
        && Result.is_error (Detector.Spec.weak_accuracy r))
      lying_runs
  in
  Alcotest.(check bool) "proof witness exists" true witness

(* Proposition 3.5: the epistemic precondition for performing an action,
   valid at every point of the generated system. *)
let prop_3_5 () =
  let env = Lazy.force udc_env in
  let n = 3 in
  let open Epistemic.Formula in
  let inits = inited alpha0 in
  let antecedent p =
    knows p
      (inits
      &&& conj
            (List.map
               (fun q -> eventually (knows q inits ||| crashed q))
               (Pid.all n)))
  in
  let consequent p =
    knows p
      (disj (List.map (fun q -> always (neg (crashed q))) (Pid.all n))
      ==> disj
            (List.map
               (fun q -> knows q inits &&& always (neg (crashed q)))
               (Pid.all n)))
  in
  let formula =
    conj (List.map (fun p -> antecedent p ==> consequent p) (Pid.all n))
  in
  (match Epistemic.Checker.counterexample env formula with
  | None -> ()
  | Some (r, m) -> Alcotest.failf "Prop 3.5 fails at (run %d, tick %d)" r m);
  (* and the check is not vacuous: the antecedent does hold somewhere *)
  let nonvacuous =
    List.exists
      (fun p ->
        Epistemic.Checker.counterexample env
          (Epistemic.Formula.neg (antecedent p))
        <> None)
      (Pid.all n)
  in
  Alcotest.(check bool) "antecedent realized" true nonvacuous

(* Theorem 3.6, accuracy half: the f-construction's reports are knowledge,
   so they can never be wrong — strong accuracy holds in every f-run,
   unconditionally. Also the f-runs are well-formed. *)
let thm_3_6_accuracy () =
  let env = Lazy.force udc_env in
  let fruns = Core.Simulate_fd.f_system env in
  List.iter
    (fun fr ->
      check_ok "f-run R2" (Run.check_r2 fr);
      check_ok "f-run R3" (Run.check_r3 fr);
      check_ok "f-run R4" (Run.check_r4 fr);
      check_ok "f-run init-once" (Run.check_init_once fr);
      check_ok "strong accuracy" (Detector.Spec.strong_accuracy fr))
    fruns

(* Theorem 3.6, completeness half, finite instance: in every run where the
   coordination obligations were discharged for an action initiated after
   q's crash, every correct process finally suspects q in f(r). *)
let thm_3_6_completeness () =
  let env = Lazy.force udc_env in
  let sys = Epistemic.Checker.system env in
  let checked = ref 0 in
  for ri = 0 to Epistemic.System.run_count sys - 1 do
    let r = Epistemic.System.run sys ri in
    let init_tick =
      List.find_map
        (fun (a, tick) -> if Action_id.equal a alpha0 then Some tick else None)
        (Run.initiated r)
    in
    match init_tick with
    | None -> ()
    | Some it ->
        let correct = Run.correct r in
        let performed_by_all_correct =
          (not (Pid.Set.is_empty correct))
          && Pid.Set.for_all (fun p -> Run.did r p alpha0) correct
        in
        let early_crashed =
          Pid.Set.filter
            (fun q ->
              match Run.crash_tick r q with
              | Some tc -> tc < it
              | None -> false)
            (Run.faulty r)
        in
        if performed_by_all_correct && not (Pid.Set.is_empty early_crashed)
        then begin
          incr checked;
          let fr = Core.Simulate_fd.f_run env ~run:ri in
          Pid.Set.iter
            (fun q ->
              Pid.Set.iter
                (fun p ->
                  let final =
                    Detector.Spec.suspects_at Detector.Spec.event_timeline fr
                      p (Run.horizon fr)
                  in
                  if not (Pid.Set.mem q final) then
                    Alcotest.failf
                      "f(run %d): correct p%d does not finally suspect \
                       early-crashed p%d"
                      ri p q)
                correct)
            early_crashed
        end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "nonvacuous (%d runs checked)" !checked)
    true (!checked > 0)

(* Theorem 4.3: the f'-construction yields t-useful generalized failure
   detectors — generalized strong accuracy unconditionally; the t-useful
   event reaches every correct process in the coordination-complete runs. *)
let thm_4_3 () =
  let env = Lazy.force udc_env in
  let sys = Epistemic.Checker.system env in
  let t = 2 in
  let checked = ref 0 in
  for ri = 0 to Epistemic.System.run_count sys - 1 do
    let fr = Core.Simulate_fd.f'_run env ~run:ri in
    check_ok "f'-run gen strong accuracy"
      (Detector.Spec.generalized_strong_accuracy fr);
    let r = Epistemic.System.run sys ri in
    let correct = Run.correct r in
    let complete =
      (not (Pid.Set.is_empty correct))
      && (match Run.initiated r with
         | [] -> false
         | _ -> true)
      && Pid.Set.for_all (fun p -> Run.did r p alpha0) correct
      && Pid.Set.for_all
           (fun q ->
             match (Run.crash_tick r q, Run.initiated r) with
             | Some tc, (_, it) :: _ -> tc < it
             | _ -> true)
           (Run.faulty r)
    in
    if complete then begin
      incr checked;
      check_ok
        (Printf.sprintf "f'(run %d) %d-useful completeness" ri t)
        (Detector.Spec.generalized_impermanent_strong_completeness fr ~t)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "nonvacuous (%d runs checked)" !checked)
    true (!checked > 0)

(* The paper's subset indexing for f'. *)
let subset_of_index () =
  Alcotest.(check bool)
    "S_0 empty" true
    (Pid.Set.is_empty (Core.Simulate_fd.subset_of_index ~n:3 0));
  Alcotest.(check bool)
    "S_5 = {0,2}" true
    (Pid.Set.equal
       (Core.Simulate_fd.subset_of_index ~n:3 5)
       (Pid.Set.of_list [ 0; 2 ]));
  Alcotest.(check bool)
    "S_7 full" true
    (Pid.Set.equal
       (Core.Simulate_fd.subset_of_index ~n:3 7)
       (Pid.Set.full 3))

let suite =
  [
    Alcotest.test_case "Prop 3.4: weak acc = strong acc under A1+A5" `Slow
      prop_3_4;
    Alcotest.test_case "Prop 3.5: epistemic precondition valid" `Slow prop_3_5;
    Alcotest.test_case "Thm 3.6: f-runs perfectly accurate" `Slow
      thm_3_6_accuracy;
    Alcotest.test_case "Thm 3.6: f-runs complete on discharged runs" `Slow
      thm_3_6_completeness;
    Alcotest.test_case "Thm 4.3: f'-runs t-useful" `Slow thm_4_3;
    Alcotest.test_case "subset indexing" `Quick subset_of_index;
  ]
