(* The paper's system conditions A1-A5 (Section 3), checked as diagnostics
   on exhaustively enumerated systems. *)

let alpha0 = Action_id.make ~owner:0 ~tag:0

let env_and_sys =
  lazy
    (let cfg = Enumerate.config ~n:3 ~depth:7 in
     let cfg =
       {
         cfg with
         Enumerate.max_crashes = 2;
         init_plan = Init_plan.one ~owner:0 ~at:1;
         oracle_mode = Enumerate.Perfect_reports;
         max_nodes = 20_000_000;
       }
     in
     let out =
       Enumerate.runs cfg
         (Core.Fip.make ~trust_reports:true (module Core.Ack_udc.P))
     in
     Alcotest.(check bool) "exhaustive" true out.Enumerate.exhaustive;
     let sys = Epistemic.System.of_runs out.Enumerate.runs in
     (Epistemic.Checker.make sys, sys))

let check what = function
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" what e

let a5 () =
  let _, sys = Lazy.force env_and_sys in
  check "A5_2" (Epistemic.Conditions.a5 sys ~t:2);
  check "A5_1" (Epistemic.Conditions.a5 sys ~t:1);
  (* and it is sharp: A5_3 fails because only 2 crashes were allowed *)
  match Epistemic.Conditions.a5 sys ~t:3 with
  | Ok () -> Alcotest.fail "A5_3 should fail with crash budget 2"
  | Error _ -> ()

let a1 () =
  let _, sys = Lazy.force env_and_sys in
  check "A1" (Epistemic.Conditions.a1 ~samples:3 ~margin:2 sys)

let a3 () =
  let env, _ = Lazy.force env_and_sys in
  check "A3" (Epistemic.Conditions.a3 env)

let a4 () =
  let env, _ = Lazy.force env_and_sys in
  check "A4 (init instance)"
    (Epistemic.Conditions.a4_instance ~samples:2 env alpha0)

let suite =
  [
    Alcotest.test_case "A5: failure freedom" `Slow a5;
    Alcotest.test_case "A1: failure independence" `Slow a1;
    Alcotest.test_case "A3: crash-insensitivity of K init" `Slow a3;
    Alcotest.test_case "A4: maximal-ignorance witnesses" `Slow a4;
  ]
