(* The knowledge machinery: indistinguishability, S5 validities, and the
   interaction between message receipt and knowledge — the paper's core
   analytical toolkit (Section 2.3). *)

open Epistemic

let alpha0 = Action_id.make ~owner:0 ~tag:0

(* A small exhaustively-enumerated system: nUDC flood on 3 processes, one
   possible crash, perfect report points. *)
let enumerated =
  lazy
    (let cfg = Enumerate.config ~n:3 ~depth:7 in
     let cfg =
       {
         cfg with
         Enumerate.max_crashes = 1;
         init_plan = Init_plan.one ~owner:0 ~at:1;
         oracle_mode = Enumerate.Perfect_reports;
       }
     in
     let out = Enumerate.runs cfg (module Core.Nudc.P) in
     Alcotest.(check bool) "exhaustive" true out.Enumerate.exhaustive;
     let sys = System.of_runs out.Enumerate.runs in
     Checker.make sys)

let check_valid env what f =
  match Checker.counterexample env f with
  | None -> ()
  | Some (r, m) ->
      Alcotest.failf "%s: fails at (run %d, tick %d): %s" what r m
        (Formula.to_string f)

let pids = [ 0; 1; 2 ]

(* Knowledge is truthful: K_p phi => phi (axiom T). *)
let axiom_truth () =
  let env = Lazy.force enumerated in
  List.iter
    (fun p ->
      List.iter
        (fun f ->
          check_valid env "T" Formula.(knows p f ==> f))
        [
          Formula.inited alpha0;
          Formula.crashed 1;
          Formula.did 2 alpha0;
          Formula.(inited alpha0 &&& neg (crashed 1));
        ])
    pids

(* Positive introspection: K_p phi => K_p K_p phi (axiom 4). *)
let axiom_positive_introspection () =
  let env = Lazy.force enumerated in
  List.iter
    (fun p ->
      let f = Formula.inited alpha0 in
      check_valid env "4" Formula.(knows p f ==> knows p (knows p f)))
    pids

(* Negative introspection: ~K_p phi => K_p ~K_p phi (axiom 5). *)
let axiom_negative_introspection () =
  let env = Lazy.force enumerated in
  List.iter
    (fun p ->
      let f = Formula.crashed 1 in
      check_valid env "5"
        Formula.(neg (knows p f) ==> knows p (neg (knows p f))))
    pids

(* Distribution: K_p (phi => psi) => (K_p phi => K_p psi) (axiom K). *)
let axiom_distribution () =
  let env = Lazy.force enumerated in
  let phi = Formula.inited alpha0 and psi = Formula.did 0 alpha0 in
  List.iter
    (fun p ->
      check_valid env "K"
        Formula.(
          knows p (phi ==> psi) ==> (knows p phi ==> knows p psi)))
    pids

(* Distributed knowledge refines individual knowledge: K_p phi => D_S phi
   for p in S. *)
let distributed_knowledge () =
  let env = Lazy.force enumerated in
  let phi = Formula.inited alpha0 in
  let s = Pid.Set.of_list [ 0; 1 ] in
  List.iter
    (fun p ->
      check_valid env "K=>D" Formula.(knows p phi ==> Dk (s, phi)))
    [ 0; 1 ];
  (* and D is still truthful *)
  check_valid env "D=>truth" Formula.(Dk (s, phi) ==> phi)

(* Locality (Section 2.3): K_p phi is local to p; formulas about p's own
   events are local to p. *)
let locality () =
  let env = Lazy.force enumerated in
  let phi = Formula.inited alpha0 in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "K_p%d local" p)
        true
        (Checker.local_to env (Formula.knows p phi) p))
    pids;
  Alcotest.(check bool)
    "init local to owner" true
    (Checker.local_to env phi 0);
  (* crash(1) is generally NOT local to p0 *)
  Alcotest.(check bool)
    "crash not local to bystander" false
    (Checker.local_to env (Formula.crashed 1) 0)

(* Stability (Section 2.3): init, crash, do are stable; "current suspicion"
   is not local-stable in general but our perfect reports only grow. *)
let stability () =
  let env = Lazy.force enumerated in
  List.iter
    (fun f ->
      Alcotest.(check bool) ("stable " ^ Formula.to_string f) true
        (Checker.stable env f))
    [
      Formula.inited alpha0;
      Formula.crashed 2;
      Formula.did 1 alpha0;
      Formula.(always (neg (crashed 0)));
      Formula.knows 1 (Formula.inited alpha0);
    ]

(* Receiving an alpha-message teaches the receiver the initiation: the
   channel never corrupts, so the message witnesses init (DC3). *)
let knowledge_from_receipt () =
  let env = Lazy.force enumerated in
  let msg = Message.Coord_request (alpha0, Fact.Set.empty) in
  List.iter
    (fun p ->
      if p <> 0 then
        check_valid env "recv => K init"
          Formula.(
            Prim (Received (p, 0, msg)) ==> knows p (inited alpha0)))
    pids

(* Nobody knows the initiation before it happens; the owner knows it the
   moment it happens. *)
let knowledge_timing () =
  let env = Lazy.force enumerated in
  check_valid env "owner knows own init"
    Formula.(inited alpha0 ==> knows 0 (inited alpha0));
  (* bystanders cannot know at time 0 *)
  let sys = Checker.system env in
  for ri = 0 to System.run_count sys - 1 do
    List.iter
      (fun p ->
        if p <> 0 then
          Alcotest.(check bool) "no initial knowledge" false
            (Checker.holds env (Formula.knows p (Formula.inited alpha0))
               ~run:ri ~tick:0))
      pids
  done

(* With system-wide accurate reports, a suspicion IS knowledge of the
   crash: every indistinguishable point also carries the report. *)
let suspicion_is_knowledge_under_perfect_reports () =
  let env = Lazy.force enumerated in
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          if p <> q then
            check_valid env "suspect => K crash"
              Formula.(
                Prim (Suspects (p, q)) ==> knows p (crashed q)))
        pids)
    pids

(* knows_crashed agrees with the formula-level definition. *)
let knows_crashed_consistent () =
  let env = Lazy.force enumerated in
  let sys = Checker.system env in
  for ri = 0 to min 40 (System.run_count sys - 1) do
    let h = System.horizon sys ri in
    List.iter
      (fun p ->
        let s = Checker.knows_crashed env p ~run:ri ~tick:h in
        List.iter
          (fun q ->
            Alcotest.(check bool)
              (Printf.sprintf "knows_crashed p%d q%d run%d" p q ri)
              (Pid.Set.mem q s)
              (Checker.holds env
                 (Formula.knows p (Formula.crashed q))
                 ~run:ri ~tick:h))
          pids)
      pids
  done

(* max_known_crashed is monotone in the subset and bounded by the truth. *)
let max_known_crashed_sane () =
  let env = Lazy.force enumerated in
  let sys = Checker.system env in
  let full = Pid.Set.of_list pids in
  for ri = 0 to min 40 (System.run_count sys - 1) do
    let h = System.horizon sys ri in
    let run = System.run sys ri in
    List.iter
      (fun p ->
        let k = Checker.max_known_crashed env p full ~run:ri ~tick:h in
        let truth = Pid.Set.cardinal (Run.faulty run) in
        Alcotest.(check bool) "k <= |F|" true (k <= truth);
        let sub = Pid.Set.of_list [ 1 ] in
        let ks = Checker.max_known_crashed env p sub ~run:ri ~tick:h in
        Alcotest.(check bool) "monotone" true (ks <= k))
      pids
  done

let suite =
  [
    Alcotest.test_case "axiom T (knowledge is truthful)" `Quick axiom_truth;
    Alcotest.test_case "axiom 4 (positive introspection)" `Quick
      axiom_positive_introspection;
    Alcotest.test_case "axiom 5 (negative introspection)" `Quick
      axiom_negative_introspection;
    Alcotest.test_case "axiom K (distribution)" `Quick axiom_distribution;
    Alcotest.test_case "distributed knowledge" `Quick distributed_knowledge;
    Alcotest.test_case "locality of formulas" `Quick locality;
    Alcotest.test_case "stability of formulas" `Quick stability;
    Alcotest.test_case "receipt teaches initiation" `Quick
      knowledge_from_receipt;
    Alcotest.test_case "knowledge timing" `Quick knowledge_timing;
    Alcotest.test_case "suspicion = knowledge under perfect reports" `Quick
      suspicion_is_knowledge_under_perfect_reports;
    Alcotest.test_case "knows_crashed consistency" `Quick
      knows_crashed_consistent;
    Alcotest.test_case "max_known_crashed sanity" `Quick
      max_known_crashed_sane;
  ]
