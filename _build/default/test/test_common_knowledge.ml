(* Common knowledge: the fixpoint operator and the classic Halpern-Moses
   impossibility — no common knowledge of a new fact under unreliable
   communication — exhibited on exhaustively enumerated systems. *)

let alpha0 = Action_id.make ~owner:0 ~tag:0
let group n = Pid.Set.full n

let enumerated =
  lazy
    (let cfg = Enumerate.config ~n:3 ~depth:8 in
     let cfg =
       {
         cfg with
         Enumerate.max_crashes = 1;
         init_plan = Init_plan.one ~owner:0 ~at:1;
         oracle_mode = Enumerate.Perfect_reports;
         max_nodes = 20_000_000;
       }
     in
     let out = Enumerate.runs cfg (module Core.Nudc.P) in
     Alcotest.(check bool) "exhaustive" true out.Enumerate.exhaustive;
     Epistemic.Checker.make (Epistemic.System.of_runs out.Enumerate.runs))

let check_valid env what f =
  match Epistemic.Checker.counterexample env f with
  | None -> ()
  | Some (r, m) -> Alcotest.failf "%s fails at (run %d, tick %d)" what r m

(* C_G is a fixpoint of E_G(phi ∧ ·): both unfoldings are valid. *)
let fixpoint_property () =
  let env = Lazy.force enumerated in
  let g = group 3 in
  let open Epistemic.Formula in
  let phi = inited alpha0 in
  check_valid env "Ck unfolds"
    (Ck (g, phi) ==> everyone g (phi &&& Ck (g, phi)));
  check_valid env "Ck refolds"
    (everyone g (phi &&& Ck (g, phi)) ==> Ck (g, phi))

(* The approximation chain: C_G phi => E_G^k phi => ... => phi. *)
let approximation_chain () =
  let env = Lazy.force enumerated in
  let g = group 3 in
  let open Epistemic.Formula in
  let phi = inited alpha0 in
  let e1 = everyone g phi in
  let e2 = everyone g e1 in
  check_valid env "C=>EE" (Ck (g, phi) ==> e2);
  check_valid env "EE=>E" (e2 ==> e1);
  check_valid env "E=>phi" (e1 ==> phi)

(* Halpern-Moses: over unreliable channels a fresh fact never becomes
   common knowledge — at every point of every run, someone's knowledge
   chain bottoms out at an undelivered message. *)
let no_common_knowledge_of_init () =
  let env = Lazy.force enumerated in
  let g = group 3 in
  let open Epistemic.Formula in
  check_valid env "Ck(init) unattainable" (neg (Ck (g, inited alpha0)))

(* ... while "everyone knows" IS attainable: non-vacuity of the chain. *)
let everyone_knows_is_attainable () =
  let env = Lazy.force enumerated in
  let g = group 3 in
  let open Epistemic.Formula in
  let e1 = everyone g (inited alpha0) in
  match Epistemic.Checker.counterexample env (neg e1) with
  | Some _ -> () (* a point where E_G(init) holds exists *)
  | None -> Alcotest.fail "E_G(init) should be attainable somewhere"

(* Degenerate group: C_{p} phi = K_p phi. *)
let singleton_group () =
  let env = Lazy.force enumerated in
  let open Epistemic.Formula in
  let g = Pid.Set.singleton 1 in
  let phi = inited alpha0 in
  check_valid env "C_{p} => K_p" (Ck (g, phi) ==> knows 1 phi);
  check_valid env "K_p => C_{p}" (knows 1 phi ==> Ck (g, phi))

(* Valid formulas ARE common knowledge (of anything true at all points):
   the operator is not degenerate-false. *)
let common_knowledge_of_validities () =
  let env = Lazy.force enumerated in
  let g = group 3 in
  let open Epistemic.Formula in
  (* "alpha0 is initiated at most by p0" is valid, hence commonly known *)
  let tautology = inited alpha0 ||| neg (inited alpha0) in
  check_valid env "Ck of a validity" (Ck (g, tautology))

let suite =
  [
    Alcotest.test_case "fixpoint unfold/refold" `Slow fixpoint_property;
    Alcotest.test_case "approximation chain" `Slow approximation_chain;
    Alcotest.test_case "no Ck of init (Halpern-Moses)" `Slow
      no_common_knowledge_of_init;
    Alcotest.test_case "E_G(init) attainable" `Slow
      everyone_knows_is_attainable;
    Alcotest.test_case "singleton group = K" `Slow singleton_group;
    Alcotest.test_case "Ck of validities" `Slow common_knowledge_of_validities;
  ]
