(* The Section 5 material and footnote 10: the ATD99 detector class, the
   heartbeat quiescence mechanism, and the sampled-knowledge ablation. *)

open Helpers

(* --- ATD99 / Theta --- *)

let rotating_is_theta_not_weak () =
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (1, 8) ] in
      let r =
        run_udc ~n:4 ~seed ~loss:0.3 ~faults
          ~oracle:(Detector.Theta.rotating ())
          (module Core.Theta_udc.P)
      in
      check_ok "theta class" (Detector.Theta.satisfies_theta r.Sim.run);
      (* every correct process is suspected at some point: weak accuracy
         genuinely fails, so this detector is strictly weaker *)
      check_err "weak accuracy fails" (Detector.Spec.weak_accuracy r.Sim.run))
    (seeds 5)

let theta_udc_attains_udc () =
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (1, 8); (3, 15) ] in
      let r =
        run_udc ~n:5 ~seed ~loss:0.3 ~faults
          ~oracle:(Detector.Theta.rotating ())
          (module Core.Theta_udc.P)
      in
      well_formed r.Sim.run;
      check_ok "udc via theta" (Core.Spec.udc r.Sim.run))
    (seeds 8)

(* The Prop 3.1 protocol is NOT safe with this weaker detector: its
   "says or has said" discharge turns rotating suspicions into permanent
   ones, so a doomed clique can perform with no correct witness. *)
let ack_udc_breaks_with_theta () =
  let n = 4 in
  let clique = Pid.Set.of_list [ 0 ] in
  let alpha0 = Action_id.make ~owner:0 ~tag:0 in
  let violated =
    List.exists
      (fun seed ->
        let cfg = Sim.config ~n ~seed in
        let cfg =
          {
            cfg with
            Sim.init_plan = Init_plan.one ~owner:0 ~at:1;
            oracle = Detector.Theta.rotating ~window:2 ();
            max_ticks = 400;
            max_consecutive_drops = 200;
            link_loss =
              List.concat_map
                (fun src ->
                  List.filter_map
                    (fun dst ->
                      if Pid.Set.mem src clique && not (Pid.Set.mem dst clique)
                      then Some ((src, dst), 1.0)
                      else None)
                    (Pid.all n))
                (Pid.all n);
            fault_plan =
              Fault_plan.of_entries
                [ { victim = 0; trigger = Fault_plan.After_did (0, alpha0) } ];
            blackout_after_do = true;
          }
        in
        let r = Sim.execute_uniform cfg (module Core.Ack_udc.P) in
        Result.is_error (Core.Spec.dc2 r.Sim.run)
        && Result.is_ok (Core.Spec.nudc r.Sim.run))
      (seeds 8)
  in
  Alcotest.(check bool) "ack protocol violates UDC under theta" true violated

(* --- Heartbeats (footnote 10 / ACT97) --- *)

let heartbeat_nudc_correct () =
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (2, 9) ] in
      let r =
        run_udc ~n:4 ~seed ~loss:0.4 ~faults (module Core.Heartbeat_nudc.P)
      in
      well_formed r.Sim.run;
      check_ok "nudc via heartbeats" (Core.Spec.nudc r.Sim.run))
    (seeds 8)

let heartbeat_application_quiescence () =
  (* run far past coordination: application traffic must stop, while the
     plain flooding protocol keeps retransmitting to the crashed peer *)
  let mk proto seed =
    let cfg = Sim.config ~n:4 ~seed in
    let cfg =
      {
        cfg with
        Sim.loss_rate = 0.3;
        fault_plan = Fault_plan.crash_at [ (3, 6) ];
        init_plan = Init_plan.one ~owner:0 ~at:1;
        goal = Sim.Run_to_max;
        max_ticks = 600;
      }
    in
    (Sim.execute_uniform cfg proto).Sim.run
  in
  List.iter
    (fun seed ->
      let hb_run = mk (module Core.Heartbeat_nudc.P) seed in
      check_ok "still correct" (Core.Spec.nudc hb_run);
      (match Core.Heartbeat_nudc.app_quiescent_after hb_run with
      | Some t ->
          Alcotest.(check bool)
            (Printf.sprintf "quiescent early (tick %d)" t)
            true
            (t < 300)
      | None -> Alcotest.fail "application traffic never stopped");
      (* contrast: the flooding protocol is still talking at the horizon *)
      let flood_run = mk (module Core.Nudc.P) seed in
      Alcotest.(check bool)
        "flooding never quiesces" true
        (Core.Heartbeat_nudc.app_quiescent_after flood_run = None))
    (seeds 4)

(* --- Sampled knowledge --- *)

let sampled_overclaim_decays () =
  (* no-detector context: exhaustively, no process ever knows a crash, so
     every crash-knowledge claim a subsample grants is overclaim *)
  let cfg = Enumerate.config ~n:3 ~depth:7 in
  let cfg =
    {
      cfg with
      Enumerate.max_crashes = 2;
      init_plan = Init_plan.one ~owner:0 ~at:1;
      oracle_mode = Enumerate.No_oracle;
      max_nodes = 20_000_000;
    }
  in
  let out = Enumerate.runs cfg (module Core.Nudc.P) in
  Alcotest.(check bool) "exhaustive" true out.Enumerate.exhaustive;
  let full = Array.of_list out.Enumerate.runs in
  let env_full =
    Epistemic.Checker.make (Epistemic.System.of_runs out.Enumerate.runs)
  in
  let claims env_sub indices =
    let total = ref 0 and refuted = ref 0 in
    List.iteri
      (fun sub_ri full_ri ->
        for m = 0 to Run.horizon full.(full_ri) do
          List.iter
            (fun pr ->
              List.iter
                (fun q ->
                  if pr <> q then
                    let f =
                      Epistemic.Formula.knows pr (Epistemic.Formula.crashed q)
                    in
                    if Epistemic.Checker.holds env_sub f ~run:sub_ri ~tick:m
                    then begin
                      incr total;
                      if
                        not
                          (Epistemic.Checker.holds env_full f ~run:full_ri
                             ~tick:m)
                      then incr refuted
                    end)
                (Pid.all 3))
            (Pid.all 3)
        done)
      indices;
    (!total, !refuted)
  in
  (* on the full system itself: zero crash-knowledge (asynchrony) *)
  let full_claims, _ =
    claims env_full (List.init (Array.length full) (fun i -> i))
  in
  Alcotest.(check int) "no crash knowledge without a detector" 0 full_claims;
  (* on a small subsample: whatever is claimed is refuted by the full
     system - pure sampling artifact *)
  let size = 12 in
  let stride = Array.length full / size in
  let indices = List.init size (fun i -> i * stride) in
  let env_sub =
    Epistemic.Checker.make
      (Epistemic.System.of_runs (List.map (fun i -> full.(i)) indices))
  in
  let sub_claims, sub_refuted = claims env_sub indices in
  Alcotest.(check int) "all subsample claims are overclaim" sub_claims
    sub_refuted

let sampled_knowledge_still_sound_where_exact () =
  (* accuracy audit never flags a suspicion of a process that crashed:
     those are true regardless of sampling *)
  let mk_config seed =
    let cfg = Sim.config ~n:3 ~seed in
    {
      cfg with
      Sim.loss_rate = 0.2;
      oracle = Detector.Oracles.perfect ();
      fault_plan = Fault_plan.crash_at [ (1, 5) ];
      init_plan = Init_plan.one ~owner:0 ~at:1;
      max_ticks = 400;
    }
  in
  let env =
    Core.Sampled.env ~mk_config ~protocol:(module Core.Ack_udc.P) ~runs:12
  in
  let o = Core.Sampled.f_overclaim env in
  Alcotest.(check bool) "some reports" true (o.Core.Sampled.reports > 0);
  (* identical fault plans: all sampled runs have p1 crashed, so
     suspecting p1 is always true; no false suspicions possible *)
  Alcotest.(check int) "no overclaim" 0 o.Core.Sampled.false_suspicions

let suite =
  [
    Alcotest.test_case "rotating detector: theta but not weak" `Quick
      rotating_is_theta_not_weak;
    Alcotest.test_case "theta protocol attains UDC" `Quick
      theta_udc_attains_udc;
    Alcotest.test_case "Prop 3.1 protocol breaks under theta" `Quick
      ack_udc_breaks_with_theta;
    Alcotest.test_case "heartbeat nUDC correct" `Quick heartbeat_nudc_correct;
    Alcotest.test_case "heartbeat application quiescence" `Quick
      heartbeat_application_quiescence;
    Alcotest.test_case "sampled knowledge: overclaim decays" `Slow
      sampled_overclaim_decays;
    Alcotest.test_case "sampled knowledge: sound on fixed faults" `Quick
      sampled_knowledge_still_sound_where_exact;
  ]
