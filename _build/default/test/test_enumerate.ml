(* The enumerator's two dedup modes: the untimed quotient is sound for
   run-level properties but under-approximates interior points — the
   regression that motivated DESIGN.md's "modelling decisions" #2. *)

let alpha0 = Action_id.make ~owner:0 ~tag:0

let enumerate dedup =
  let cfg = Enumerate.config ~n:3 ~depth:7 in
  let cfg =
    {
      cfg with
      Enumerate.max_crashes = 2;
      init_plan = Init_plan.one ~owner:0 ~at:1;
      oracle_mode = Enumerate.Perfect_reports;
      max_nodes = 20_000_000;
      dedup;
    }
  in
  let out =
    Enumerate.runs cfg (Core.Fip.make ~trust_reports:true (module Core.Ack_udc.P))
  in
  Alcotest.(check bool) "exhaustive" true out.Enumerate.exhaustive;
  out.Enumerate.runs

(* The quotient merges nodes with equal untimed state: strictly fewer
   runs, and every content it produces is one the exact mode produces
   (a sub-sample, not a lossless reduction: protocols with paced
   retransmission are tick-sensitive, so tick-relabelled paths can
   diverge - see the mli and DESIGN.md). *)
let quotient_is_smaller_content_subset () =
  let timed = enumerate Enumerate.Timed in
  let untimed = enumerate Enumerate.Untimed in
  Alcotest.(check bool)
    (Printf.sprintf "fewer runs (%d < %d)" (List.length untimed)
       (List.length timed))
    true
    (List.length untimed < List.length timed);
  let content run =
    String.concat "|"
      (List.map
         (fun p ->
           String.concat ";"
             (List.map
                (fun e -> Format.asprintf "%a" Event.pp e)
                (History.events (Run.history run p))))
         (Pid.all (Run.n run)))
  in
  let key_set runs =
    let t = Hashtbl.create 256 in
    List.iter (fun r -> Hashtbl.replace t (content r) ()) runs;
    t
  in
  let kt = key_set timed and ku = key_set untimed in
  Hashtbl.iter
    (fun k () ->
      if not (Hashtbl.mem kt k) then
        Alcotest.failf "untimed-only content: %s" k)
    ku

(* Run-level verdicts agree between the modes (the quotient is sound for
   properties of complete runs). *)
let run_level_verdicts_agree () =
  let verdict_counts runs =
    ( List.length (List.filter (fun r -> Result.is_ok (Core.Spec.udc r)) runs),
      List.length
        (List.filter
           (fun r -> Result.is_ok (Detector.Spec.strong_accuracy r))
           runs) )
  in
  let timed = enumerate Enumerate.Timed in
  let untimed = enumerate Enumerate.Untimed in
  (* counts differ (different run multiplicity) but full-accuracy must hold
     in both, and the udc-clean FRACTION of distinct contents is equal by
     the content-completeness above; here we check the absolute property *)
  let _, acc_t = verdict_counts timed in
  let _, acc_u = verdict_counts untimed in
  Alcotest.(check int) "timed all strongly accurate" (List.length timed) acc_t;
  Alcotest.(check int) "untimed all strongly accurate" (List.length untimed)
    acc_u

(* Trace rendering: matched pairs and loss marking. *)
let trace_rendering () =
  let req = Message.Coord_request (alpha0, Fact.Set.empty) in
  let mk specs =
    let hists =
      Array.init 2 (fun p ->
          List.fold_left
            (fun h (e, tick) -> History.append h e ~tick)
            History.empty
            (Option.value ~default:[] (List.assoc_opt p specs)))
    in
    Run.make ~n:2 ~horizon:10 hists
  in
  let run =
    mk
      [
        ( 0,
          [
            (Event.Send { dst = 1; msg = req }, 1);
            (Event.Send { dst = 1; msg = req }, 3);
          ] );
        (1, [ (Event.Recv { src = 0; msg = req }, 5) ]);
      ]
  in
  let rendered = Trace.to_string run in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  (* one matched pair, one lost send *)
  Alcotest.(check bool) "has a matched tag" true (contains "#1" rendered);
  let lost_count =
    List.length
      (List.filter (contains "(lost)") (String.split_on_char '\n' rendered))
  in
  Alcotest.(check int) "one lost send" 1 lost_count

let suite =
  [
    Alcotest.test_case "quotient: smaller, content subset" `Slow
      quotient_is_smaller_content_subset;
    Alcotest.test_case "quotient: run-level verdicts sound" `Slow
      run_level_verdicts_agree;
    Alcotest.test_case "trace rendering" `Quick trace_rendering;
  ]
