(* The lower-bound executions: weaker-than-required failure detection
   admits runs violating UDC (the † entries of Table 1 and the necessity
   direction of Theorems 3.6/4.3). *)

open Helpers

let run_scenario s = check_ok s.Core.Adversary.name (Core.Adversary.verify s)

let solo_performer () =
  run_scenario (Core.Adversary.solo_performer ~n:4 ~seed:42L)

let confined_clique () =
  run_scenario (Core.Adversary.confined_clique ~n:4 ~t:2 ~seed:42L);
  run_scenario (Core.Adversary.confined_clique ~n:6 ~t:3 ~seed:7L);
  run_scenario (Core.Adversary.confined_clique ~n:7 ~t:4 ~seed:11L)

let lying_detector () =
  run_scenario (Core.Adversary.lying_detector ~n:4 ~seed:42L);
  run_scenario (Core.Adversary.lying_detector ~n:5 ~seed:3L)

let blind_detector () =
  run_scenario (Core.Adversary.blind_detector ~n:4 ~seed:42L)

(* The violating runs still satisfy the *non-uniform* spec: the performer
   crashed, so DC2' does not oblige anyone. This is exactly the gap
   between UDC and nUDC the paper stresses. *)
let violations_are_non_uniform_only () =
  List.iter
    (fun s ->
      let r = Sim.execute s.Core.Adversary.config s.Core.Adversary.protocol in
      match s.Core.Adversary.expectation with
      | Core.Adversary.Udc_violated ->
          check_err "DC2 violated" (Core.Spec.dc2 r.Sim.run);
          check_ok "nUDC still holds" (Core.Spec.nudc r.Sim.run)
      | Core.Adversary.Dc1_violated -> ())
    (Core.Adversary.all ~n:4 ~seed:42L)

(* The confined-clique construction is defeated by making the clique larger
   than t: with t < n/2 the protocol waits for n - t > n/2 acks, and any
   such set contains a process outside every t-sized doomed set. *)
let clique_fails_when_t_small () =
  let n = 4 and t = 1 in
  let clique = Pid.Set.of_list [ 0; 1 ] in
  let cfg = Sim.config ~n ~seed:42L in
  let cfg =
    {
      cfg with
      Sim.init_plan = Init_plan.one ~owner:0 ~at:1;
      max_ticks = 600;
      max_consecutive_drops = 200;
      (* the adversary may only crash t=1 process: kill the initiator *)
      fault_plan =
        Fault_plan.of_entries
          [
            {
              victim = 0;
              trigger = Fault_plan.After_did (0, Action_id.make ~owner:0 ~tag:0);
            };
          ];
      blackout_after_do = true;
      link_loss =
        (* links out of the clique are lossy only while the performer is
           alive; since only p0 crashes, p1 keeps flooding and fairness
           eventually delivers: loss below 1.0 *)
        List.concat_map
          (fun src ->
            List.filter_map
              (fun dst ->
                if Pid.Set.mem src clique && not (Pid.Set.mem dst clique) then
                  Some ((src, dst), 0.9)
                else None)
              (Pid.all n))
          (Pid.all n);
    }
  in
  let r = Sim.execute_uniform cfg (Core.Majority_udc.make ~t) in
  check_ok "UDC holds with t<n/2" (Core.Spec.udc r.Sim.run)

let suite =
  [
    Alcotest.test_case "solo performer (t=n-1)" `Quick solo_performer;
    Alcotest.test_case "confined clique (n/2<=t<n-1)" `Quick confined_clique;
    Alcotest.test_case "lying detector breaks ack protocol" `Quick
      lying_detector;
    Alcotest.test_case "blind detector blocks initiator" `Quick blind_detector;
    Alcotest.test_case "violations respect nUDC" `Quick
      violations_are_non_uniform_only;
    Alcotest.test_case "clique adversary defeated when t<n/2" `Quick
      clique_fails_when_t_small;
  ]
