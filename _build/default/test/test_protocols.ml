(* Integration tests for the UDC/nUDC protocols of the paper
   (Propositions 2.3, 2.4, 3.1, 4.1; Corollary 4.2). *)

open Helpers

let nudc_no_faults () =
  List.iter
    (fun seed ->
      let r = run_udc ~n:4 ~seed ~loss:0.4 (module Core.Nudc.P) in
      well_formed r.Sim.run;
      check_ok "nudc" (Core.Spec.nudc r.Sim.run);
      Alcotest.(check bool) "goal reached" true (r.Sim.reason = Sim.Goal_reached))
    (seeds 5)

let nudc_with_crashes () =
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (1, 9); (3, 15) ] in
      let r = run_udc ~n:5 ~seed ~loss:0.5 ~faults (module Core.Nudc.P) in
      well_formed r.Sim.run;
      check_ok "nudc with crashes" (Core.Spec.nudc r.Sim.run))
    (seeds 5)

let nudc_all_crash () =
  let faults = Fault_plan.crash_at [ (0, 4); (1, 5); (2, 6) ] in
  let r = run_udc ~n:3 ~seed:1L ~loss:0.5 ~faults (module Core.Nudc.P) in
  well_formed r.Sim.run;
  check_ok "nudc, all crash" (Core.Spec.nudc r.Sim.run)

let reliable_udc_ok () =
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (2, 12) ] in
      let r = run_udc ~n:4 ~seed ~loss:0.0 ~faults (module Core.Reliable_udc.P) in
      well_formed r.Sim.run;
      check_ok "udc reliable" (Core.Spec.udc r.Sim.run))
    (seeds 8)

(* The crash-right-after-perform adversary: with reliable channels UDC
   still holds because the performer flushed its messages first. *)
let reliable_udc_crash_after_do () =
  let alpha = Action_id.make ~owner:0 ~tag:0 in
  let faults =
    Fault_plan.of_entries
      [ { victim = 0; trigger = Fault_plan.After_did (0, alpha) } ]
  in
  List.iter
    (fun seed ->
      let init_plan = Init_plan.one ~owner:0 ~at:1 in
      let r =
        run_udc ~n:4 ~seed ~loss:0.0 ~faults ~init_plan
          (module Core.Reliable_udc.P)
      in
      check_ok "udc reliable, performer dies" (Core.Spec.udc r.Sim.run))
    (seeds 8)

(* The same protocol over lossy channels is *not* uniform: the performer's
   messages can all be lost. This is the reliable/unreliable row split. *)
let reliable_udc_breaks_on_loss () =
  let alpha = Action_id.make ~owner:0 ~tag:0 in
  let faults =
    Fault_plan.of_entries
      [ { victim = 0; trigger = Fault_plan.After_did (0, alpha) } ]
  in
  let init_plan = Init_plan.one ~owner:0 ~at:1 in
  let violated =
    List.exists
      (fun seed ->
        let cfg = Sim.config ~n:4 ~seed in
        let cfg =
          {
            cfg with
            Sim.loss_rate = 1.0;
            max_consecutive_drops = 100;
            fault_plan = faults;
            init_plan;
            blackout_after_do = true;
            max_ticks = 300;
          }
        in
        let r = Sim.execute_uniform cfg (module Core.Reliable_udc.P) in
        Result.is_error (Core.Spec.dc2 r.Sim.run))
      (seeds 6)
  in
  Alcotest.(check bool) "some run violates DC2" true violated

let ack_udc_strong_fd () =
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (1, 8) ] in
      let oracle = Detector.Oracles.strong ~seed () in
      let r = run_udc ~n:4 ~seed ~loss:0.4 ~oracle ~faults (module Core.Ack_udc.P) in
      well_formed r.Sim.run;
      check_ok "udc ack+strong" (Core.Spec.udc r.Sim.run);
      check_ok "oracle is strong"
        (Detector.Spec.satisfies Detector.Spec.Strong r.Sim.run))
    (seeds 8)

let ack_udc_many_failures () =
  (* n-1 failures, unreliable channels: strong FD still suffices. *)
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (1, 10); (2, 14); (3, 18) ] in
      let oracle = Detector.Oracles.perfect ~lag:2 () in
      let r = run_udc ~n:4 ~seed ~loss:0.3 ~oracle ~faults (module Core.Ack_udc.P) in
      well_formed r.Sim.run;
      check_ok "udc ack, n-1 failures" (Core.Spec.udc r.Sim.run))
    (seeds 8)

let generalized_udc_ok () =
  List.iter
    (fun seed ->
      let n = 5 and t = 3 in
      let faults = Fault_plan.crash_at [ (1, 8); (4, 12) ] in
      let oracle = Detector.Oracles.gen_exact () in
      let r =
        run_udc ~n ~seed ~loss:0.3 ~oracle ~faults (Core.Generalized_udc.make ~t)
      in
      well_formed r.Sim.run;
      check_ok "udc generalized" (Core.Spec.udc r.Sim.run);
      check_ok "oracle t-useful" (Detector.Spec.t_useful r.Sim.run ~t))
    (seeds 8)

let generalized_udc_component () =
  let n = 6 and t = 2 in
  let components =
    [ Pid.Set.of_list [ 0; 1 ]; Pid.Set.of_list [ 2; 3 ]; Pid.Set.of_list [ 4; 5 ] ]
  in
  List.iter
    (fun seed ->
      let faults = Fault_plan.crash_at [ (2, 9) ] in
      let oracle = Detector.Oracles.gen_component ~components () in
      let r =
        run_udc ~n ~seed ~loss:0.3 ~oracle ~faults (Core.Generalized_udc.make ~t)
      in
      check_ok "udc component detector" (Core.Spec.udc r.Sim.run))
    (seeds 6)

let majority_udc_ok () =
  (* t < n/2, no failure detector at all (Gopal-Toueg / Corollary 4.2). *)
  List.iter
    (fun seed ->
      let n = 5 and t = 2 in
      let faults = Fault_plan.crash_at [ (0, 7); (3, 11) ] in
      let r = run_udc ~n ~seed ~loss:0.4 ~faults (Core.Majority_udc.make ~t) in
      well_formed r.Sim.run;
      check_ok "udc majority" (Core.Spec.udc r.Sim.run))
    (seeds 8)

let majority_udc_via_cycling_detector () =
  (* The same guarantee obtained from the paper's trivial t-useful
     detector plugged into the Proposition 4.1 protocol. *)
  List.iter
    (fun seed ->
      let n = 5 and t = 2 in
      let faults = Fault_plan.crash_at [ (1, 9) ] in
      let oracle = Detector.Oracles.trivial_cycling ~t () in
      let r =
        run_udc ~n ~seed ~loss:0.3 ~oracle ~faults (Core.Generalized_udc.make ~t)
      in
      check_ok "udc via cycling detector" (Core.Spec.udc r.Sim.run))
    (seeds 6)

let suite =
  [
    Alcotest.test_case "nUDC: lossy channels, no faults" `Quick nudc_no_faults;
    Alcotest.test_case "nUDC: lossy channels, crashes" `Quick nudc_with_crashes;
    Alcotest.test_case "nUDC: every process crashes" `Quick nudc_all_crash;
    Alcotest.test_case "UDC: reliable channels, no FD" `Quick reliable_udc_ok;
    Alcotest.test_case "UDC: reliable, performer dies" `Quick
      reliable_udc_crash_after_do;
    Alcotest.test_case "UDC: reliable protocol breaks on lossy channels"
      `Quick reliable_udc_breaks_on_loss;
    Alcotest.test_case "UDC: ack protocol + strong FD" `Quick ack_udc_strong_fd;
    Alcotest.test_case "UDC: ack protocol, n-1 failures" `Quick
      ack_udc_many_failures;
    Alcotest.test_case "UDC: generalized t-useful FD" `Quick generalized_udc_ok;
    Alcotest.test_case "UDC: component detector" `Quick
      generalized_udc_component;
    Alcotest.test_case "UDC: majority, t<n/2, no FD" `Quick majority_udc_ok;
    Alcotest.test_case "UDC: trivial cycling detector" `Quick
      majority_udc_via_cycling_detector;
  ]
