(* Chandra-Toueg consensus baselines: the consensus rows of Table 1. *)

open Helpers

let run_consensus ?(loss = 0.2) ?(faults = Fault_plan.empty) ~oracle ~n ~seed
    proto =
  let cfg = Sim.config ~n ~seed in
  let cfg =
    {
      cfg with
      Sim.loss_rate = loss;
      oracle;
      fault_plan = faults;
      goal = Sim.All_alive_decided;
      max_ticks = 4000;
    }
  in
  Sim.execute_uniform cfg proto

let proposals n = Array.init n (fun i -> (i * 3) mod 7)

let s_algorithm_no_faults () =
  List.iter
    (fun seed ->
      let n = 4 in
      let props = proposals n in
      let r =
        run_consensus ~oracle:(Detector.Oracles.strong ~seed ()) ~n ~seed
          (Consensus.Chandra_toueg.make_s ~proposals:props)
      in
      well_formed r.Sim.run;
      check_ok "consensus S" (Consensus.Spec.consensus ~proposals:props r.Sim.run))
    (seeds 6)

let s_algorithm_many_failures () =
  (* strong FD tolerates n-1 failures even over lossy links *)
  List.iter
    (fun seed ->
      let n = 4 in
      let props = proposals n in
      let faults = Fault_plan.crash_at [ (0, 6); (2, 10); (3, 14) ] in
      let r =
        run_consensus ~faults ~oracle:(Detector.Oracles.perfect ~lag:1 ()) ~n
          ~seed
          (Consensus.Chandra_toueg.make_s ~proposals:props)
      in
      check_ok "consensus S, n-1 crashes"
        (Consensus.Spec.consensus ~proposals:props r.Sim.run))
    (seeds 6)

let ds_algorithm_majority () =
  List.iter
    (fun seed ->
      let n = 5 in
      let props = proposals n in
      let faults = Fault_plan.crash_at [ (1, 8); (3, 20) ] in
      let oracle =
        Detector.Oracles.eventually_perfect ~stabilize_at:60 ~seed ()
      in
      let r =
        run_consensus ~faults ~oracle ~n ~seed
          (Consensus.Chandra_toueg.make_ds ~proposals:props)
      in
      well_formed r.Sim.run;
      check_ok "consensus DS"
        (Consensus.Spec.consensus ~proposals:props r.Sim.run))
    (seeds 6)

(* The FLP-style cell: with no failure detector, a crashed coordinator
   blocks the S algorithm forever — termination fails. *)
let no_detector_blocks () =
  let n = 4 in
  let props = proposals n in
  let faults = Fault_plan.crash_at [ (0, 2) ] in
  let r =
    run_consensus ~faults ~oracle:Oracle.none ~n ~seed:42L
      (Consensus.Chandra_toueg.make_s ~proposals:props)
  in
  Alcotest.(check bool) "runs to the cap" true (r.Sim.reason = Sim.Max_ticks);
  check_err "termination fails" (Consensus.Spec.termination r.Sim.run);
  check_ok "but agreement holds" (Consensus.Spec.agreement r.Sim.run)

(* UDC vs consensus separation (Section 1): with reliable channels and no
   detector, UDC is attainable at any t while consensus is not. *)
let separation () =
  let n = 4 in
  let faults = Fault_plan.crash_at [ (0, 6); (1, 9); (2, 12) ] in
  let udc_run = run_udc ~n ~seed:42L ~loss:0.0 ~faults (module Core.Reliable_udc.P) in
  check_ok "UDC fine" (Core.Spec.udc udc_run.Sim.run);
  let props = proposals n in
  let cons_run =
    run_consensus ~loss:0.0 ~faults ~oracle:Oracle.none ~n ~seed:42L
      (Consensus.Chandra_toueg.make_s ~proposals:props)
  in
  check_err "consensus stuck" (Consensus.Spec.termination cons_run.Sim.run)

(* The honest eventually-weak detector (the real ◇W of Table 1): too weak
   for the ◇S algorithm on its own — a crashed coordinator is suspected
   only by its witness, so other processes can wait forever — but
   sufficient once strengthened by current-semantics gossip (the
   ◇W ≅ ◇S observation via Prop 2.1). *)
let eventually_weak_needs_gossip () =
  let n = 5 in
  let props = proposals n in
  let faults = Fault_plan.crash_at [ (1, 8) ] in
  (* without the conversion, some run blocks at the cap *)
  let blocked =
    List.exists
      (fun seed ->
        let r =
          run_consensus ~faults
            ~oracle:(Detector.Oracles.eventually_weak ~stabilize_at:60 ~seed ())
            ~n ~seed
            (Consensus.Chandra_toueg.make_ds ~proposals:props)
        in
        Result.is_error (Consensus.Spec.termination r.Sim.run))
      (seeds 6)
  in
  Alcotest.(check bool) "raw ◇W blocks somewhere" true blocked;
  (* with the conversion, every run decides *)
  List.iter
    (fun seed ->
      let module DS = struct
        include (val Consensus.Chandra_toueg.make_ds ~proposals:props)
      end in
      let module G = Detector.Convert.With_gossip_current (DS) in
      let r =
        run_consensus ~faults
          ~oracle:(Detector.Oracles.eventually_weak ~stabilize_at:60 ~seed ())
          ~n ~seed (module G)
      in
      check_ok "◇W + gossip decides"
        (Consensus.Spec.consensus ~proposals:props r.Sim.run))
    (seeds 6)

let suite =
  [
    Alcotest.test_case "S algorithm, no faults" `Quick s_algorithm_no_faults;
    Alcotest.test_case "S algorithm, n-1 failures" `Quick
      s_algorithm_many_failures;
    Alcotest.test_case "DS algorithm, t<n/2, eventually-strong FD" `Quick
      ds_algorithm_majority;
    Alcotest.test_case "no detector: coordinator crash blocks" `Quick
      no_detector_blocks;
    Alcotest.test_case "UDC vs consensus separation" `Quick separation;
    Alcotest.test_case "eventually-weak needs the gossip conversion" `Quick
      eventually_weak_needs_gossip;
  ]
